//! Seeded chaos sweep over the Scribe delivery path.
//!
//! Each test drives [`uli_scribe::run_chaos`] across a range of seeds; the
//! harness injects aggregator crashes, session expiries, staging outages,
//! disk-full windows, and link faults (drop / lost ack / duplicate /
//! delay), then settles the pipeline, moves every hour, and audits the
//! delivery invariants. Every assertion message carries the seed, so any
//! failure reproduces with `run_chaos(<seed>, &cfg)` — no flake hunting.

use uli_scribe::network::LinkFaults;
use uli_scribe::{run_chaos, run_chaos_with, BatchPolicy, ChaosConfig, FaultConfig, Sabotage};

fn assert_clean(seed: u64, cfg: &ChaosConfig) -> uli_scribe::ChaosOutcome {
    let o = run_chaos(seed, cfg);
    assert!(
        o.is_clean(),
        "seed {seed}: invariant violations: {:?}\nreport: {:?}\naccounting: {:?}",
        o.accounting.violations,
        o.report,
        o.accounting
    );
    let a = &o.accounting;
    assert_eq!(
        a.logged,
        a.delivered + a.buffered + a.lost + a.dropped,
        "seed {seed}: unique-id accounting must reconcile exactly: {a:?}"
    );
    assert_eq!(
        o.report.moved, a.delivered,
        "seed {seed}: mover output must match delivered-id accounting"
    );
    o
}

/// The main sweep: 104 seeds through the default fault mix, zero
/// violations allowed. Also proves the harness is not vacuous — across the
/// sweep every fault family must actually have produced observable damage
/// (crash losses, duplicate squashes, disk-full drops, delayed packets).
#[test]
fn sweep_default_faults_104_seeds() {
    let cfg = ChaosConfig::default();
    let (mut crash_loss, mut dup_merges, mut disk_drops, mut retries) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..104 {
        let o = assert_clean(seed, &cfg);
        crash_loss += o.report.lost_in_crashes;
        dup_merges += o.report.duplicates_merged;
        disk_drops += o.report.dropped_disk_full;
        retries += o.report.retried;
        assert!(
            o.hours >= 6,
            "seed {seed}: default config should span 6 hours, got {}",
            o.hours
        );
    }
    assert!(
        crash_loss > 0,
        "no run lost entries to a crash: harness too tame"
    );
    assert!(
        dup_merges > 0,
        "no run squashed a duplicate: harness too tame"
    );
    assert!(
        disk_drops > 0,
        "no run hit a disk-full window: harness too tame"
    );
    assert!(
        retries > 0,
        "no run exercised the retry path: harness too tame"
    );
}

/// A hostile network: high drop / lost-ack / duplicate / delay rates plus a
/// higher crash rate. Duplicates flood the mover; none may survive.
#[test]
fn sweep_aggressive_link_faults_16_seeds() {
    let cfg = ChaosConfig {
        faults: FaultConfig {
            crash_rate: 0.03,
            link: LinkFaults {
                drop_rate: 0.08,
                ack_loss_rate: 0.08,
                duplicate_rate: 0.06,
                delay_rate: 0.15,
                max_delay_steps: 4,
            },
            ..FaultConfig::default()
        },
        ..ChaosConfig::default()
    };
    let mut dup_merges = 0u64;
    for seed in 9000..9016 {
        let o = assert_clean(seed, &cfg);
        dup_merges += o.report.duplicates_merged;
    }
    assert!(
        dup_merges > 0,
        "an aggressive ack-loss/duplicate mix must force the mover to squash duplicates"
    );
}

/// Determinism: the same seed must yield byte-identical reports and
/// accounting, twice in a row — the property that makes every sweep
/// failure reproducible from its seed alone.
#[test]
fn same_seed_twice_is_byte_identical() {
    let cfg = ChaosConfig::default();
    for seed in [0u64, 17, 42, 9001] {
        let a = run_chaos(seed, &cfg);
        let b = run_chaos(seed, &cfg);
        assert_eq!(
            a.report, b.report,
            "seed {seed}: reports diverged across replays"
        );
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "seed {seed}: report debug rendering diverged"
        );
        assert_eq!(
            format!("{:?}", a.accounting),
            format!("{:?}", b.accounting),
            "seed {seed}: accounting diverged across replays"
        );
    }
}

/// The parallel mover under chaos: 20 seeds each at 4 and 8 delivery
/// workers, every invariant intact, and the outcome byte-identical to the
/// serial mover's same-seed run — parallelism must be invisible to both
/// the accounting and the delivered stream.
#[test]
fn sweep_parallel_mover_matches_serial_40_seeds() {
    for workers in [4usize, 8] {
        let mut cfg = ChaosConfig::default();
        cfg.topology.workers = uli_warehouse::Parallelism::fixed(workers);
        let serial_cfg = ChaosConfig::default();
        for seed in 300..320 {
            let o = assert_clean(seed, &cfg);
            let s = run_chaos(seed, &serial_cfg);
            assert_eq!(
                o.report, s.report,
                "seed {seed}: {workers}-worker mover diverged from serial report"
            );
            assert_eq!(
                format!("{:?}", o.accounting),
                format!("{:?}", s.accounting),
                "seed {seed}: {workers}-worker mover diverged from serial accounting"
            );
        }
    }
}

/// Negative control: a fault the harness does NOT account for (silent
/// deletion of a staged file) must trip the checker. If this test fails,
/// the sweep above is meaningless.
#[test]
fn checker_catches_unaccounted_loss() {
    // Quiet fault mix: with no duplicates in flight, deleting any staged
    // file is guaranteed to lose data rather than a redundant copy.
    let cfg = ChaosConfig {
        faults: FaultConfig::quiet(),
        ..ChaosConfig::default()
    };
    for seed in [1u64, 2, 3] {
        let o = run_chaos_with(seed, &cfg, Sabotage::DeleteStagedFile);
        assert!(
            !o.is_clean(),
            "seed {seed}: silent staged-file deletion went undetected"
        );
        assert!(
            o.accounting
                .violations
                .iter()
                .any(|v| v.contains("unaccounted")),
            "seed {seed}: expected an unaccounted-loss violation, got {:?}",
            o.accounting.violations
        );
    }
}

/// Batched delivery under the default fault mix: link faults now land at
/// batch granularity (a dropped message loses the whole batch, a duplicated
/// one replays every entry in it), and the delivery invariants must hold
/// just the same. Two explicit policies — a plain record cap and a
/// byte-capped lingering one — across 20 seeds each.
#[test]
fn sweep_batched_delivery_40_seeds() {
    let policies = [
        BatchPolicy {
            max_records: 16,
            ..BatchPolicy::default()
        },
        BatchPolicy {
            max_records: 64,
            max_bytes: 4 * 1024,
            linger_steps: 2,
        },
    ];
    for (pi, policy) in policies.iter().enumerate() {
        let mut cfg = ChaosConfig::default();
        cfg.topology.batch = *policy;
        let (mut multi_entry_batches, mut retries) = (false, 0u64);
        for seed in 5000..5020 {
            let o = assert_clean(seed, &cfg);
            multi_entry_batches |= o.report.batches_sent < o.report.logged;
            retries += o.report.retried;
        }
        assert!(
            multi_entry_batches,
            "policy {pi}: no run ever packed more than one entry per batch"
        );
        assert!(
            retries > 0,
            "policy {pi}: no run retried a failed batch: harness too tame"
        );
    }
}

/// Negative control for batching: a batch stored only halfway but acked
/// whole must trip the checker as unaccounted loss. If this passes cleanly,
/// the batched sweep above proves nothing.
#[test]
fn checker_catches_half_applied_batch() {
    let mut cfg = ChaosConfig {
        faults: FaultConfig::quiet(),
        ..ChaosConfig::default()
    };
    // Multi-entry batches are what half-apply needs; keep the default cap.
    cfg.topology.batch = BatchPolicy::default();
    for seed in [1u64, 2, 3] {
        let o = run_chaos_with(seed, &cfg, Sabotage::HalfApplyBatch);
        assert!(
            !o.is_clean(),
            "seed {seed}: a half-applied, fully acked batch went undetected"
        );
        assert!(
            o.accounting
                .violations
                .iter()
                .any(|v| v.contains("unaccounted")),
            "seed {seed}: expected an unaccounted-loss violation, got {:?}",
            o.accounting.violations
        );
    }
}

/// Mover faults: every hour's first move attempt happens during a main
/// warehouse outage. The failed attempt must leave no debris, and the
/// retry must deliver everything exactly once.
#[test]
fn main_outage_at_every_move_stays_all_or_nothing() {
    let cfg = ChaosConfig {
        main_outage_at_move: true,
        ..ChaosConfig::default()
    };
    for seed in 100..108 {
        let o = assert_clean(seed, &cfg);
        assert!(o.report.moved > 0, "seed {seed}: nothing delivered");
    }
}

/// Serving-layer consistency under chaos: an [`uli_serve::IndexMaintainer`]
/// rides the delivery tap through the full fault mix, with a crash injected
/// in the window between hour-land and index-commit on two of every three
/// seeds. The landed hours stay visible while their index is missing;
/// after `recover()` the index must account for exactly the audited
/// delivered partition — never a lost hour, never a double count — and a
/// second recovery must change nothing.
#[test]
fn serving_index_reconciles_with_delivered_partition_under_chaos() {
    use std::cell::RefCell;
    use uli_serve::IndexMaintainer;

    let cfg = ChaosConfig::default();
    let mut rebuilt_total = 0u64;
    for seed in 700..716 {
        let injected = seed % 3; // 0, 1, or 2 crash windows per seed
        let slot: RefCell<Option<IndexMaintainer>> = RefCell::new(None);
        let o = uli_scribe::run_chaos_prepared(seed, &cfg, |pipe| {
            let m = IndexMaintainer::new(pipe.main_warehouse().clone(), "client_events");
            m.fail_next_commits(injected);
            pipe.add_delivery_tap(m.tap());
            *slot.borrow_mut() = Some(m);
        });
        assert!(
            o.is_clean(),
            "seed {seed}: delivery invariants broke under the tap: {:?}",
            o.accounting.violations
        );
        let m = slot.into_inner().expect("chaos prepare ran");
        let rebuilt = m
            .recover()
            .unwrap_or_else(|e| panic!("seed {seed}: recover: {e}"));
        let hours = m.indexed_hours();
        assert_eq!(
            rebuilt,
            injected.min(hours.len() as u64),
            "seed {seed}: recover() must rebuild exactly the crash-window hours"
        );
        rebuilt_total += rebuilt;
        assert_eq!(m.lag_hours(), 0, "seed {seed}: index lags after recovery");
        let indexed: u64 = hours
            .iter()
            .filter_map(|&h| m.hour_index(h))
            .map(|i| i.records)
            .sum();
        assert_eq!(
            indexed,
            o.accounting.delivered,
            "seed {seed}: serve index must account for exactly the audited \
             delivered partition ({} hours indexed)",
            hours.len()
        );
        // Recovery is idempotent: running it again rebuilds nothing and
        // the accounting stands.
        assert_eq!(
            m.recover().unwrap(),
            0,
            "seed {seed}: recover not idempotent"
        );
        let again: u64 = m
            .indexed_hours()
            .iter()
            .filter_map(|&h| m.hour_index(h))
            .map(|i| i.records)
            .sum();
        assert_eq!(again, indexed, "seed {seed}: re-recovery changed counts");
    }
    assert!(
        rebuilt_total > 0,
        "no seed exercised the land/commit crash window: sweep too tame"
    );
}
