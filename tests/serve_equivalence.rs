//! Serving layer vs batch engine: property-based equivalence.
//!
//! The serving layer's contract is that every point-lookup answer is
//! byte-identical to the batch dataflow engine's answer over the same
//! delivered hours — the index only changes *what gets decoded*, never
//! the result. These properties throw randomized query mixes at both
//! sides of one landed day: users present and absent, event names that
//! hit and miss the dictionary, hours with traffic, quiet hours, hours
//! past the truncated end of the day, and empty hour ranges — and check
//! the answers at worker counts {1, 4, 8}.

use std::sync::OnceLock;

use proptest::prelude::*;

use unified_logging::core::write_client_events_columnar;
use unified_logging::prelude::*;
use unified_logging::serve::{
    batch_count, batch_sessions, batch_top_names, batch_user_events, ServeHandle,
};
use unified_logging::warehouse::HourlyPartition;

/// Worker counts every answer is checked under.
const WORKERS: [usize; 3] = [1, 4, 8];

/// The day is truncated here: hours 22 and 23 never land, so queries
/// over them exercise the missing-hour path on both sides.
const TRUNCATE_AT: u64 = 22;

struct Fixture {
    wh: Warehouse,
    handle: ServeHandle,
    /// Distinct user ids the day actually saw, sorted.
    users: Vec<i64>,
    /// Distinct event names the day actually logged, sorted.
    names: Vec<String>,
}

static FIX: OnceLock<Fixture> = OnceLock::new();

/// One landed day, built once: generated events bucketed per hour, landed
/// columnar with small row groups, indexed through the delivery-tap path.
fn fixture() -> &'static Fixture {
    FIX.get_or_init(|| {
        let day = generate_day(
            &WorkloadConfig {
                users: 60,
                ..Default::default()
            },
            0,
        );
        let wh = Warehouse::new();
        let mut by_hour: Vec<Vec<ClientEvent>> = vec![Vec::new(); 24];
        let mut users: Vec<i64> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for ev in day.events {
            let hour = ev.timestamp.hour_index();
            if hour >= TRUNCATE_AT {
                continue;
            }
            users.push(ev.user_id);
            names.push(ev.name.as_str().to_string());
            by_hour[hour as usize].push(ev);
        }
        users.sort_unstable();
        users.dedup();
        names.sort_unstable();
        names.dedup();
        let m = unified_logging::serve::IndexMaintainer::new(wh.clone(), "client_events");
        for (hour, events) in by_hour.iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            let partition = HourlyPartition::from_hour_index("client_events", hour as u64);
            write_client_events_columnar(
                &wh,
                &partition.main_dir().child("part-00000").unwrap(),
                events,
                true,
                8,
            )
            .unwrap();
            m.tap().hour_delivered(&partition, &[]);
        }
        Fixture {
            wh,
            handle: m.handle(),
            users,
            names,
        }
    })
}

/// Maps a raw pick onto a user the day saw (even picks) or one it never
/// saw (odd picks), so both paths get coverage.
fn pick_user(f: &Fixture, raw: usize) -> i64 {
    if raw.is_multiple_of(2) {
        f.users[(raw / 2) % f.users.len()]
    } else {
        f.users.last().unwrap() + 1 + (raw as i64 % 7)
    }
}

/// Maps a raw pick onto a name in the dictionary (even) or a name no
/// dictionary holds (odd).
fn pick_name(f: &Fixture, raw: usize) -> String {
    if raw.is_multiple_of(2) {
        f.names[(raw / 2) % f.names.len()].clone()
    } else {
        format!("never:logged:by:any:client:v{raw}")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `user-events <user> <hour>` equals the batch engine's filtered
    /// scan at every worker count — including absent users, quiet hours,
    /// and hours past the truncated day.
    #[test]
    fn user_events_match_batch(raw_user in 0usize..128, hour in 0u64..30) {
        let f = fixture();
        let user = pick_user(f, raw_user);
        let serve = f.handle.user_events(user, hour).unwrap();
        for workers in WORKERS {
            let batch = batch_user_events(&f.wh, "client_events", hour, user, workers).unwrap();
            prop_assert_eq!(&serve.rows, &batch, "user {} hour {} workers {}", user, hour, workers);
        }
    }

    /// `count <name>` over a random (possibly empty, possibly past-day)
    /// hour range equals the batch engine's filter + global count.
    #[test]
    fn counts_match_batch(raw_name in 0usize..64, lo in 0u64..30, len in 0u64..30) {
        let f = fixture();
        let name = pick_name(f, raw_name);
        let hours = lo..(lo + len).min(48);
        let serve = f.handle.count(&name, hours.clone());
        for workers in WORKERS {
            let batch = batch_count(&f.wh, "client_events", hours.clone(), &name, workers).unwrap();
            prop_assert_eq!(&serve.rows, &batch, "name {} hours {:?} workers {}", name, hours, workers);
        }
        // Index-only answers decode nothing, whatever the mix.
        prop_assert_eq!(serve.stats.decoded_bytes, 0);
    }

    /// `top-names <hour> <k>` equals the batch engine's group/sort/limit,
    /// tie-breaks included.
    #[test]
    fn top_names_match_batch(hour in 0u64..30, k in 0usize..8) {
        let f = fixture();
        let serve = f.handle.top_names(hour, k);
        for workers in WORKERS {
            let batch = batch_top_names(&f.wh, "client_events", hour, k, workers).unwrap();
            prop_assert_eq!(&serve.rows, &batch, "hour {} k {} workers {}", hour, k, workers);
        }
        prop_assert_eq!(serve.stats.decoded_bytes, 0);
    }

    /// `sessions <user> [day]` equals sessionizing the batch engine's
    /// filtered day scan — day 1 is entirely past the data and must be
    /// empty on both sides.
    #[test]
    fn sessions_match_batch(raw_user in 0usize..128, day in 0u64..2) {
        let f = fixture();
        let user = pick_user(f, raw_user);
        let (serve, _) = f.handle.sessions(user, day).unwrap();
        for workers in WORKERS {
            let batch = batch_sessions(&f.wh, "client_events", day, user, workers).unwrap();
            prop_assert_eq!(&serve, &batch, "user {} day {} workers {}", user, day, workers);
        }
    }
}

/// The serving layer never decodes more than the batch engine for the
/// same lookup — pruning can only shrink the bill.
#[test]
fn serve_never_decodes_more_than_batch() {
    let f = fixture();
    for user in [f.users[0], f.users[f.users.len() / 2], -1] {
        for hour in [0u64, 7, 25] {
            let before = f.wh.stats();
            let serve = f.handle.user_events(user, hour).unwrap();
            let serve_bytes = f.wh.stats().since(&before).uncompressed_bytes_read;
            assert_eq!(serve_bytes, serve.stats.decoded_bytes, "stats self-account");
            let before = f.wh.stats();
            batch_user_events(&f.wh, "client_events", hour, user, 1).unwrap();
            let batch_bytes = f.wh.stats().since(&before).uncompressed_bytes_read;
            assert!(
                serve_bytes <= batch_bytes,
                "user {user} hour {hour}: serve decoded {serve_bytes} B, batch {batch_bytes} B"
            );
        }
    }
}
