//! Multi-day integration: the nightly Oink cadence across three days —
//! roll-ups, dictionaries, sequences, catalog rebuilds — with cross-day
//! consistency checks.

use unified_logging::oink::rollup::load_rollups;
use unified_logging::oink::scheduler::JobStatus;
use unified_logging::prelude::*;

#[test]
fn three_days_of_nightly_jobs() {
    let config = WorkloadConfig {
        users: 80,
        ..Default::default()
    };
    let wh = Warehouse::new();
    let mut truths = Vec::new();
    for day in 0..3 {
        let w = generate_day(&config, day);
        write_client_events(&wh, &w.events, 3).unwrap();
        truths.push(w.truth);
    }

    // Oink drives the nightly jobs for all three days.
    let mut oink = Oink::new();
    let wh1 = wh.clone();
    oink.add_daily("rollups", &[], move |d| {
        compute_rollups(&wh1, d)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let wh2 = wh.clone();
    oink.add_daily("sequences", &["rollups"], move |d| {
        Materializer::new(wh2.clone())
            .run_day(d)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    oink.advance_hour(3 * 24 - 1);
    for day in 0..3 {
        assert_eq!(
            oink.status("sequences", day),
            JobStatus::Completed,
            "day {day}"
        );
    }

    // Each day's artifacts are self-consistent and isolated.
    let m = Materializer::new(wh.clone());
    let mut catalog: Option<ClientEventCatalog> = None;
    for day in 0..3 {
        let seqs = load_sequences(&wh, day).unwrap();
        assert_eq!(
            seqs.len() as u64,
            truths[day as usize].sessions,
            "day {day}"
        );

        let rollup = load_rollups(&wh, day).unwrap();
        let level5: u64 = rollup
            .iter()
            .filter(|(k, _)| k.level == 5)
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            level5, truths[day as usize].events,
            "day {day} rollup total"
        );

        // The catalog rebuilds daily, carrying descriptions forward.
        let dict = m.load_dictionary(day).unwrap();
        let samples = m.load_samples(day).unwrap();
        catalog = Some(match catalog.take() {
            None => {
                let mut c = ClientEventCatalog::build(day, &dict, &samples);
                let top = c.by_frequency()[0].name.clone();
                assert!(c.describe(&top, "dashboard headline metric"));
                c
            }
            Some(prev) => prev.rebuild(day, &dict, &samples),
        });
    }
    let catalog = catalog.unwrap();
    assert_eq!(catalog.day_index(), 2);
    // The annotation made on day 0 survived two rebuilds (the top event is
    // stable across days for this workload).
    let annotated = catalog
        .by_frequency()
        .iter()
        .filter(|e| e.description.is_some())
        .count();
    assert_eq!(annotated, 1, "day-0 description survived to day 2");
}

#[test]
fn sequences_of_different_days_do_not_mix() {
    let config = WorkloadConfig {
        users: 40,
        ..Default::default()
    };
    let wh = Warehouse::new();
    for day in 0..2 {
        let w = generate_day(&config, day);
        write_client_events(&wh, &w.events, 2).unwrap();
        Materializer::new(wh.clone()).run_day(day).unwrap();
    }
    let day0 = load_sequences(&wh, 0).unwrap();
    let day1 = load_sequences(&wh, 1).unwrap();
    // Session ids embed the day index, so the sets must be disjoint.
    for s in &day0 {
        assert!(s.session_id.contains("-0-"), "{}", s.session_id);
    }
    for s in &day1 {
        assert!(s.session_id.contains("-1-"), "{}", s.session_id);
    }

    // Dictionaries are per-day artifacts: decoding one day's sequence with
    // the other day's dictionary must still be *structurally* valid (any
    // rank in range decodes) but can disagree on names — which is exactly
    // why cross-day modeling must re-encode (see E7).
    let m = Materializer::new(wh);
    let d0 = m.load_dictionary(0).unwrap();
    let d1 = m.load_dictionary(1).unwrap();
    assert!(d0.len() > 100);
    assert!(d1.len() > 100);
    let mismatch = (0..d0.len().min(d1.len()) as u32)
        .filter(|r| d0.name_of(*r) != d1.name_of(*r))
        .count();
    assert!(
        mismatch > 0,
        "rank spaces genuinely differ between days (tail frequencies shift)"
    );
}
