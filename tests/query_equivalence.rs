//! Queries over raw client event logs and over session sequences must give
//! identical answers — the sequences are an *optimization*, not a different
//! dataset (§4.2, §5.2). Also checks index pushdown never changes results.

use std::sync::Arc;

use unified_logging::core::session::{day_dir, sequences_dir};
use unified_logging::index::{build_client_event_index, EventIndexPruner};
use unified_logging::prelude::*;

struct Fixture {
    wh: Warehouse,
    dict: EventDictionary,
    truth: unified_logging::workload::GroundTruth,
    events: Vec<ClientEvent>,
}

fn fixture() -> Fixture {
    let day = generate_day(
        &WorkloadConfig {
            users: 150,
            ..Default::default()
        },
        0,
    );
    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).unwrap();
    let m = Materializer::new(wh.clone());
    m.run_day(0).unwrap();
    let dict = m.load_dictionary(0).unwrap();
    Fixture {
        wh,
        dict,
        truth: day.truth,
        events: day.events,
    }
}

fn count_raw(f: &Fixture, pattern: &EventPattern) -> (i64, JobStats) {
    let matching: Vec<String> = f
        .dict
        .iter()
        .filter(|(_, n, _)| pattern.matches(n))
        .map(|(_, n, _)| n.as_str().to_string())
        .collect();
    let mut predicate = Expr::lit(false);
    for name in &matching {
        predicate = predicate.or(Expr::col(1).eq(Expr::lit(name.as_str())));
    }
    let plan = Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .filter(predicate)
    .aggregate(vec![Agg::count()]);
    let r = Engine::new(f.wh.clone()).run(&plan).unwrap();
    (r.rows[0][0].as_int().unwrap(), r.stats)
}

fn count_sequences(f: &Fixture, pattern: &EventPattern) -> (i64, JobStats) {
    let udf = CountClientEvents::new(pattern, &f.dict);
    let plan = Plan::load(
        sequences_dir(0),
        Arc::new(SessionSequenceLoader),
        SESSION_SEQUENCE_SCHEMA.to_vec(),
    )
    .foreach(vec![("n", Expr::udf(udf, vec![Expr::col(3)]))])
    .aggregate(vec![Agg::sum(0).named("total")]);
    let r = Engine::new(f.wh.clone()).run(&plan).unwrap();
    (r.rows[0][0].as_int().unwrap(), r.stats)
}

#[test]
fn raw_and_sequence_counts_agree_across_patterns() {
    let f = fixture();
    for pattern in [
        "*:profile_click",
        "*:impression",
        "web:home:mentions:*",
        "iphone:*:*:*:*:click",
        "*:follow",
        "web:search:*",
    ] {
        let p = EventPattern::parse(pattern).unwrap();
        let (raw, raw_stats) = count_raw(&f, &p);
        let (seq, seq_stats) = count_sequences(&f, &p);
        assert_eq!(raw, seq, "pattern {pattern}");
        // Ground truth cross-check against the generator's event list.
        let truth = f.events.iter().filter(|e| p.matches(&e.name)).count() as i64;
        assert_eq!(raw, truth, "pattern {pattern} vs truth");
        // The paper's claim: sequences scan dramatically less.
        assert!(
            seq_stats.input_bytes_uncompressed * 5 < raw_stats.input_bytes_uncompressed,
            "pattern {pattern}: {} vs {}",
            seq_stats.input_bytes_uncompressed,
            raw_stats.input_bytes_uncompressed
        );
        assert!(seq_stats.map_tasks <= raw_stats.map_tasks);
    }
}

#[test]
fn sessions_containing_variant_agrees() {
    let f = fixture();
    let p = EventPattern::parse("*:profile_click").unwrap();
    let charset = EventCharSet::expand(&p, &f.dict);
    let seqs = load_sequences(&f.wh, 0).unwrap();
    let via_sequences = seqs
        .iter()
        .filter(|s| charset.occurs_in(&s.sequence))
        .count() as u64;

    // Truth: distinct (user, session) pairs containing a matching event.
    let mut keys: Vec<(i64, &str)> = f
        .events
        .iter()
        .filter(|e| p.matches(&e.name))
        .map(|e| (e.user_id, e.session_id.as_str()))
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(via_sequences as usize, keys.len());
    assert!(via_sequences <= f.truth.sessions);
}

#[test]
fn index_pushdown_preserves_results_and_skips_blocks() {
    let f = fixture();
    let data_dir = day_dir("client_events", 0);
    let index = Arc::new(build_client_event_index(&f.wh, &data_dir).unwrap());

    // A selective pattern: funnel submits only occur in a few sessions.
    let p = EventPattern::parse("web:signup:*").unwrap();
    let (unindexed, unindexed_stats) = count_raw(&f, &p);

    let matching: Vec<String> = f
        .dict
        .iter()
        .filter(|(_, n, _)| p.matches(n))
        .map(|(_, n, _)| n.as_str().to_string())
        .collect();
    let mut predicate = Expr::lit(false);
    for name in &matching {
        predicate = predicate.or(Expr::col(1).eq(Expr::lit(name.as_str())));
    }
    let pruner = EventIndexPruner::new(index, p.clone());
    let plan = Plan::load(
        data_dir,
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .with_pruner(pruner)
    .filter(predicate)
    .aggregate(vec![Agg::count()]);
    let r = Engine::new(f.wh.clone()).run(&plan).unwrap();
    let indexed = r.rows[0][0].as_int().unwrap();

    assert_eq!(indexed, unindexed, "index must not change the answer");
    assert!(indexed > 0, "the workload plants funnel events");
    assert!(
        r.stats.blocks_skipped > 0,
        "selective query must skip blocks"
    );
    assert!(r.stats.input_blocks < unindexed_stats.input_blocks);
}

#[test]
fn dictionary_decode_recovers_exact_sessions() {
    let f = fixture();
    let seqs = load_sequences(&f.wh, 0).unwrap();
    // Reconstruct ground-truth per-session event name lists.
    use std::collections::BTreeMap;
    let mut truth: BTreeMap<(i64, String), Vec<&ClientEvent>> = BTreeMap::new();
    for ev in &f.events {
        truth
            .entry((ev.user_id, ev.session_id.clone()))
            .or_default()
            .push(ev);
    }
    for seq in seqs.iter().take(50) {
        let decoded = f
            .dict
            .decode_sequence(&seq.sequence)
            .expect("dictionary covers the day");
        let mut expected = truth
            .remove(&(seq.user_id, seq.session_id.clone()))
            .expect("session exists in truth");
        expected.sort_by_key(|e| e.timestamp);
        assert_eq!(decoded.len(), expected.len());
        for (d, e) in decoded.iter().zip(&expected) {
            assert_eq!(**d, e.name);
        }
    }
}
