//! The lambda invariant suite: streaming == batch over the delivered
//! partition.
//!
//! The speed layer ([`uli_stream::StreamAnalytics`]) taps the mover's
//! exactly-once delivery point and folds every delivered record into
//! sharded monoid state. The batch layer scans the same landed warehouse
//! hours and computes exact answers. The lambda invariant says the two
//! must agree:
//!
//! * **exactly** for exact aggregates (record/event/malformed counts,
//!   per-name and per-client rollups), and
//! * **within declared error bounds** for the sketches (HyperLogLog
//!   distinct users, Count-Min/TopK trending names, log-linear payload
//!   percentiles),
//!
//! no matter how many workers (shards) the speed layer runs, how records
//! were routed, in what order partials merge, and under arbitrary seeded
//! crash/retry/duplicate chaos schedules. Every test here carries its
//! seed or its shard count in the assertion message, so any failure
//! reproduces deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uli_scribe::message::LogEntry;
use uli_scribe::network::LinkFaults;
use uli_scribe::{run_chaos_tapped, ChaosConfig, FaultConfig, PipelineConfig, ScribePipeline};
use uli_stream::{
    batch_reference, check_convergence, BatchSummary, StreamAnalytics, StreamConfig, StreamState,
};
use uli_thrift::ThriftRecord;
use uli_workload::{generate_day, DayStream, WorkloadConfig};

const CATEGORY: &str = "client_events";

fn smoke_config(users: u64) -> WorkloadConfig {
    WorkloadConfig {
        users,
        ..WorkloadConfig::default()
    }
}

/// Drives one day of client events through the Scribe pipeline with a
/// speed-layer tap attached, hour by hour (the end-to-end idiom), and
/// returns the pipeline plus the tapped analytics handle.
fn deliver_tapped(
    events: &[uli_core::ClientEvent],
    stream_cfg: StreamConfig,
) -> (ScribePipeline, StreamAnalytics) {
    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        ..Default::default()
    };
    let mut pipe = ScribePipeline::new(config);
    let analytics = StreamAnalytics::new(stream_cfg);
    pipe.add_delivery_tap(analytics.tap());
    for hour in 0..24u64 {
        for (i, ev) in events
            .iter()
            .filter(|e| e.timestamp.hour_index() == hour)
            .enumerate()
        {
            pipe.log(
                (ev.user_id as usize) % 2,
                i % 4,
                LogEntry::new(CATEGORY, ev.to_bytes()),
            );
        }
        pipe.step();
        pipe.flush_hour(hour);
        pipe.seal_hour(CATEGORY, hour);
        pipe.move_hour(CATEGORY, hour).expect("all DCs sealed");
    }
    (pipe, analytics)
}

/// The core invariant: for each worker (shard) count in {1, 4, 8}, the
/// streaming running view over a delivered day equals the batch answer
/// scanned back out of the main warehouse — exactly for exact aggregates,
/// within bounds for sketches — and the views at different shard counts
/// are byte-identical to each other.
#[test]
fn streaming_equals_batch_under_worker_counts() {
    let day = generate_day(&smoke_config(120), 0);
    let mut views: Vec<StreamState> = Vec::new();
    for shards in [1usize, 4, 8] {
        let (pipe, analytics) = deliver_tapped(
            &day.events,
            StreamConfig {
                shards,
                trending_k: 5,
            },
        );
        let batch = batch_reference(pipe.main_warehouse(), CATEGORY, 0..24).expect("batch scan");
        assert_eq!(
            batch.records as usize,
            day.events.len(),
            "shards {shards}: batch layer must see the whole day"
        );
        let stream = analytics.running_view();
        let c = check_convergence(&stream, &batch);
        assert!(
            c.streaming_matches_batch,
            "shards {shards}: lambda invariant failed: {c:?}"
        );
        assert_eq!(stream.malformed(), 0, "shards {shards}");

        // Windowed views re-fold to the running view, and each window
        // matches a batch scan of just that hour.
        let mut refold = StreamState::new(5);
        for hour in analytics.hours() {
            let window = analytics.hour_view(hour).expect("hour listed");
            let mut hour_batch = BatchSummary::default();
            uli_stream::scan_hour(pipe.main_warehouse(), CATEGORY, hour, &mut hour_batch)
                .expect("hour scan");
            let hc = check_convergence(&window, &hour_batch);
            assert!(
                hc.streaming_matches_batch,
                "shards {shards} hour {hour}: window diverged: {hc:?}"
            );
            refold.merge(&window);
        }
        assert_eq!(
            refold, stream,
            "shards {shards}: running != fold of windows"
        );
        views.push(stream);
    }
    assert_eq!(views[0], views[1], "1-shard and 4-shard views diverged");
    assert_eq!(views[1], views[2], "4-shard and 8-shard views diverged");
}

/// Random shard counts and random merge orderings: flatten every per-hour
/// shard partial, merge them in a seeded-random order (and separately via
/// a random binary merge tree), and the result must equal both the running
/// view and the batch answer. This is the monoid contract at system level.
#[test]
fn random_shard_counts_and_merge_orders_converge() {
    let day = generate_day(&smoke_config(80), 0);
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x1a3b_da00 + seed);
        let shards = rng.gen_range(1usize..=12);
        let (pipe, analytics) = deliver_tapped(
            &day.events,
            StreamConfig {
                shards,
                trending_k: 5,
            },
        );
        let batch = batch_reference(pipe.main_warehouse(), CATEGORY, 0..24).expect("batch scan");
        let reference = analytics.running_view();

        // Every shard partial from every delivered hour, flattened.
        let mut partials: Vec<StreamState> = analytics
            .hours()
            .into_iter()
            .flat_map(|h| analytics.shard_states(h))
            .collect();

        // Fisher–Yates shuffle, then a left fold in that order.
        for i in (1..partials.len()).rev() {
            partials.swap(i, rng.gen_range(0usize..=i));
        }
        let mut folded = StreamState::new(5);
        for p in &partials {
            folded.merge(p);
        }
        assert_eq!(
            folded, reference,
            "seed {seed} shards {shards}: shuffled fold diverged from running view"
        );

        // Random binary merge tree: repeatedly merge two random partials
        // until one remains — a different association every time.
        let mut pool = partials.clone();
        while pool.len() > 1 {
            let i = rng.gen_range(0usize..pool.len());
            let a = pool.swap_remove(i);
            let j = rng.gen_range(0usize..pool.len());
            let mut b = pool.swap_remove(j);
            b.merge(&a);
            pool.push(b);
        }
        let treed = pool.pop().unwrap_or_else(|| StreamState::new(5));
        assert_eq!(
            treed, reference,
            "seed {seed} shards {shards}: random merge tree diverged"
        );

        let c = check_convergence(&reference, &batch);
        assert!(
            c.streaming_matches_batch,
            "seed {seed} shards {shards}: lambda invariant failed: {c:?}"
        );
    }
}

/// Chaos reconciliation: under seeded crash/expiry/outage/link-fault
/// schedules, the streaming layer must observe exactly the records the
/// audited run delivered — `check_invariants`' `delivered` partition — and
/// nothing from the lost or dropped partitions.
#[test]
fn chaos_streaming_totals_match_delivered_partition() {
    let cfg = ChaosConfig::default();
    for seed in 0..10u64 {
        let analytics = StreamAnalytics::new(StreamConfig::default());
        let o = run_chaos_tapped(seed, &cfg, analytics.tap());
        assert!(
            o.is_clean(),
            "seed {seed}: chaos run itself violated delivery invariants: {:?}",
            o.accounting.violations
        );
        let stream = analytics.running_view();
        assert_eq!(
            stream.records(),
            o.accounting.delivered,
            "seed {seed}: streaming must converge to the delivered partition \
             (logged {} buffered {} lost {} dropped {})",
            o.accounting.logged,
            o.accounting.buffered,
            o.accounting.lost,
            o.accounting.dropped,
        );
        // Chaos payloads are synthetic strings, not Thrift events: every
        // delivered record must be counted as malformed, never dropped.
        assert_eq!(stream.malformed(), stream.records(), "seed {seed}");
        assert_eq!(stream.events(), 0, "seed {seed}");
        // The windowed views partition the running total.
        let windowed: u64 = analytics
            .hours()
            .into_iter()
            .map(|h| analytics.hour_view(h).expect("listed hour").records())
            .sum();
        assert_eq!(windowed, stream.records(), "seed {seed}");
    }
}

/// No double-count under duplicate delivery: a hostile link layer floods
/// the mover with duplicates and retries; the tap sits *after* duplicate
/// squashing, so streaming totals must still equal the delivered partition
/// exactly. The sweep must actually squash duplicates to prove anything.
#[test]
fn chaos_duplicates_never_double_count_in_streaming_views() {
    let cfg = ChaosConfig {
        faults: FaultConfig {
            crash_rate: 0.03,
            link: LinkFaults {
                drop_rate: 0.08,
                ack_loss_rate: 0.08,
                duplicate_rate: 0.06,
                delay_rate: 0.15,
                max_delay_steps: 4,
            },
            ..FaultConfig::default()
        },
        ..ChaosConfig::default()
    };
    let mut dup_merges = 0u64;
    for seed in 7000..7008u64 {
        let analytics = StreamAnalytics::new(StreamConfig::default());
        let o = run_chaos_tapped(seed, &cfg, analytics.tap());
        assert!(o.is_clean(), "seed {seed}: {:?}", o.accounting.violations);
        dup_merges += o.report.duplicates_merged;
        assert_eq!(
            analytics.running_view().records(),
            o.accounting.delivered,
            "seed {seed}: duplicate delivery leaked into streaming totals"
        );
    }
    assert!(
        dup_merges > 0,
        "sweep never squashed a duplicate: the no-double-count claim is vacuous"
    );
}

/// DayStream edge cases, byte-identical to batch generation:
/// * the streamed generator drives the speed layer to the exact state the
///   batch-materialized day does;
/// * hours with no traffic produce no streaming window and no batch rows;
/// * a day whose *last* hour is empty still moves, converges, and leaves
///   hour 23 windowless.
#[test]
fn daystream_edge_cases_match_batch_byte_for_byte() {
    let config = smoke_config(40);
    let day = generate_day(&config, 0);

    // Streamed generation vs batch generation: same delivered state.
    let streamed: Vec<uli_core::ClientEvent> = DayStream::new(&config, 0).collect();
    assert_eq!(streamed, day.events, "generator streams diverged");
    let (_, from_stream) = deliver_tapped(&streamed, StreamConfig::default());
    let (pipe, from_batch) = deliver_tapped(&day.events, StreamConfig::default());
    assert_eq!(
        from_stream.running_view(),
        from_batch.running_view(),
        "DayStream delivery and batch delivery must produce identical streaming state"
    );

    // Empty hour partitions: no window, no batch rows, and the invariant
    // holds over the full 24-hour span regardless.
    let mut occupied = [false; 24];
    for ev in &day.events {
        occupied[ev.timestamp.hour_index() as usize] = true;
    }
    assert!(
        occupied.iter().any(|o| !o),
        "a 40-user day should leave at least one hour empty; regenerate the config"
    );
    for hour in 0..24u64 {
        if occupied[hour as usize] {
            continue;
        }
        assert!(
            from_batch.hour_view(hour).is_none(),
            "hour {hour}: empty hour grew a streaming window"
        );
        let mut empty = BatchSummary::default();
        uli_stream::scan_hour(pipe.main_warehouse(), CATEGORY, hour, &mut empty).expect("scan");
        assert_eq!(empty.records, 0, "hour {hour}: empty hour has batch rows");
    }
    let batch = batch_reference(pipe.main_warehouse(), CATEGORY, 0..24).expect("batch scan");
    let c = check_convergence(&from_batch.running_view(), &batch);
    assert!(c.streaming_matches_batch, "{c:?}");

    // Day whose last hour is empty: drop hour-23 traffic explicitly.
    let truncated: Vec<uli_core::ClientEvent> = day
        .events
        .iter()
        .filter(|e| e.timestamp.hour_index() != 23)
        .cloned()
        .collect();
    let (tpipe, tstream) = deliver_tapped(&truncated, StreamConfig::default());
    assert!(
        tstream.hour_view(23).is_none(),
        "empty last hour grew a window"
    );
    let tbatch = batch_reference(tpipe.main_warehouse(), CATEGORY, 0..24).expect("batch scan");
    assert_eq!(tbatch.records as usize, truncated.len());
    let tc = check_convergence(&tstream.running_view(), &tbatch);
    assert!(tc.streaming_matches_batch, "truncated day: {tc:?}");
}

/// Single-user smoke: the smallest day the generator will make. Exercises
/// the degenerate HLL (linear-counting regime, one or zero distinct users)
/// and a trending list shorter than k.
#[test]
fn single_user_day_converges() {
    let day = generate_day(&smoke_config(1), 0);
    let (pipe, analytics) = deliver_tapped(&day.events, StreamConfig::default());
    let batch = batch_reference(pipe.main_warehouse(), CATEGORY, 0..24).expect("batch scan");
    assert_eq!(batch.records as usize, day.events.len());
    let stream = analytics.running_view();
    let c = check_convergence(&stream, &batch);
    assert!(c.streaming_matches_batch, "{c:?}");
    assert!(
        batch.distinct_users.len() <= 1,
        "one user (possibly logged out) can contribute at most one id"
    );
    assert_eq!(
        stream.distinct_users_estimate(),
        batch.distinct_users.len() as u64,
        "tiny cardinalities sit in the HLL's exact linear-counting regime"
    );
}

/// BirdBrain-style drill-down: the speed layer's per-client rollup equals
/// the exact per-client event counts from the warehouse, and the trending
/// names are genuinely the most frequent names in the batch truth.
#[test]
fn per_client_rollup_and_trending_names_match_batch_truth() {
    let day = generate_day(&smoke_config(120), 0);
    let (pipe, analytics) = deliver_tapped(&day.events, StreamConfig::default());
    let batch = batch_reference(pipe.main_warehouse(), CATEGORY, 0..24).expect("batch scan");
    let stream = analytics.running_view();

    assert_eq!(stream.by_client(), &batch.by_client);
    let client_total: u64 = stream.by_client().values().sum();
    assert_eq!(
        client_total,
        stream.events(),
        "rollup must cover every event"
    );

    // Every reported trending name must estimate within the Count-Min
    // bound of its true count, and the top-1 must be a true mode.
    let bound = stream.trending().cms().error_bound();
    let true_max = batch.by_name.values().copied().max().unwrap_or(0);
    let top = stream.trending().top();
    assert!(!top.is_empty());
    for (name, est) in &top {
        let name = std::str::from_utf8(name).expect("names are utf-8");
        let truth = batch.by_name.get(name).copied().unwrap_or(0);
        assert!(
            *est >= truth && *est <= truth + bound,
            "{name}: estimate {est} outside [{truth}, {}]",
            truth + bound
        );
    }
    let (top_name, _) = &top[0];
    let top_truth = batch
        .by_name
        .get(std::str::from_utf8(top_name).unwrap())
        .copied()
        .unwrap_or(0);
    assert!(
        top_truth + bound >= true_max,
        "top-1 trending name is not within a CM bound of the true mode"
    );
}
