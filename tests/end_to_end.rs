//! End-to-end integration: workload → Scribe → log mover → Oink daily jobs
//! → session sequences → analytics, checked against generator ground truth.

use unified_logging::oink::scheduler::JobStatus;
use unified_logging::prelude::*;
use unified_logging::scribe::message::LogEntry;
use unified_logging::thrift::ThriftRecord;

fn workload() -> unified_logging::workload::DayWorkload {
    generate_day(
        &WorkloadConfig {
            users: 120,
            ..Default::default()
        },
        0,
    )
}

/// Pushes a day through the delivery pipeline hour by hour.
fn deliver(day: &unified_logging::workload::DayWorkload) -> ScribePipeline {
    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        ..Default::default()
    };
    let mut pipe = ScribePipeline::new(config);
    for hour in 0..24u64 {
        for (i, ev) in day
            .events
            .iter()
            .filter(|e| e.timestamp.hour_index() == hour)
            .enumerate()
        {
            pipe.log(
                (ev.user_id as usize) % 2,
                i % 4,
                LogEntry::new("client_events", ev.to_bytes()),
            );
        }
        pipe.step();
        pipe.flush_hour(hour);
        pipe.seal_hour("client_events", hour);
        pipe.move_hour("client_events", hour)
            .expect("all DCs sealed");
    }
    pipe
}

#[test]
fn scribe_delivery_preserves_every_event() {
    let day = workload();
    let pipe = deliver(&day);
    let totals = pipe.report();
    assert_eq!(totals.logged as usize, day.events.len());
    assert_eq!(totals.moved, totals.logged);
    assert_eq!(totals.lost_in_crashes, 0);

    // The main warehouse holds exactly the day's records.
    let meta = pipe
        .main_warehouse()
        .dir_meta(&unified_logging::core::session::day_dir("client_events", 0))
        .expect("day dir exists");
    assert_eq!(meta.records as usize, day.events.len());
}

#[test]
fn oink_pipeline_materializes_and_analytics_agree_with_truth() {
    let day = workload();
    let pipe = deliver(&day);
    let wh = pipe.main_warehouse().clone();

    // Daily jobs under Oink: roll-ups, then sequences.
    let mut oink = Oink::new();
    let wh1 = wh.clone();
    oink.add_daily("rollups", &[], move |d| {
        compute_rollups(&wh1, d)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let wh2 = wh.clone();
    oink.add_daily("sequences", &["rollups"], move |d| {
        Materializer::new(wh2.clone())
            .run_day(d)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    oink.advance_hour(23);
    assert_eq!(oink.status("rollups", 0), JobStatus::Completed);
    assert_eq!(oink.status("sequences", 0), JobStatus::Completed);

    // Sessions reconstructed from delivered logs match the generator.
    let sequences = load_sequences(&wh, 0).expect("materialized");
    assert_eq!(sequences.len() as u64, day.truth.sessions);
    let events_total: u64 = sequences.iter().map(|s| s.len() as u64).sum();
    assert_eq!(events_total, day.truth.events);

    // BirdBrain drill-down by client matches the generator's client mix.
    let dict = Materializer::new(wh.clone()).load_dictionary(0).unwrap();
    let summary = DailySummary::compute(0, &sequences, &dict);
    for (client, sessions) in &day.truth.sessions_by_client {
        assert_eq!(
            summary.by_client.get(client),
            Some(sessions),
            "client {client}"
        );
    }

    // Funnel counts over sequences equal planted truth.
    let funnel = ClientEventsFunnel::new(signup_funnel().stages, &dict);
    let report = funnel.evaluate(sequences.iter().map(|s| s.sequence.as_str()));
    assert_eq!(report.reached, day.truth.funnel_stage_counts);
}

#[test]
fn rollups_are_consistent_with_event_totals() {
    let day = workload();
    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).unwrap();
    let table = compute_rollups(&wh, 0).unwrap();

    // Level-5 totals sum to the number of events.
    let level5_total: u64 = table
        .iter()
        .filter(|(k, _)| k.level == 5)
        .map(|(_, v)| v)
        .sum();
    assert_eq!(level5_total as usize, day.events.len());
    // Every level carries the same grand total (each event counted once
    // per schema).
    for level in 1..=5usize {
        let total: u64 = table
            .iter()
            .filter(|(k, _)| k.level == level)
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, level5_total, "level {level}");
    }
}

#[test]
fn catalog_covers_every_observed_event() {
    let day = workload();
    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).unwrap();
    let m = Materializer::new(wh.clone());
    m.run_day(0).unwrap();
    let dict = m.load_dictionary(0).unwrap();
    let samples = m.load_samples(0).unwrap();
    let catalog = ClientEventCatalog::build(0, &dict, &samples);
    assert_eq!(catalog.len() as u64, day.truth.distinct_events);
    // Every catalog entry for a frequent event carries samples.
    let top = catalog.by_frequency();
    assert!(!top[0].samples.is_empty());
    // Hierarchical browse totals equal the event count.
    let total: u64 = catalog.browse(&[]).iter().map(|(_, c)| c).sum();
    assert_eq!(total as usize, day.events.len());
}
