//! Integration-level fault injection: the pipeline's delivery guarantees
//! under aggregator crashes, staging outages, and lagging datacenters (§2).

use unified_logging::prelude::*;
use unified_logging::scribe::message::LogEntry;

fn config() -> PipelineConfig {
    PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 1_000,
        ..Default::default()
    }
}

fn log_batch(pipe: &mut ScribePipeline, n_per_host: usize, tag: &str) -> u64 {
    let mut total = 0;
    for dc in 0..2 {
        for host in 0..4 {
            for i in 0..n_per_host {
                pipe.log(
                    dc,
                    host,
                    LogEntry::new(
                        "client_events",
                        format!("{tag}-{dc}-{host}-{i}").into_bytes(),
                    ),
                );
                total += 1;
            }
        }
    }
    total
}

#[test]
fn repeated_crashes_never_lose_flushed_data() {
    let mut pipe = ScribePipeline::new(config());
    let mut logged = 0;
    let mut crash_lost = 0;
    for round in 0..6 {
        logged += log_batch(&mut pipe, 10, &format!("r{round}"));
        pipe.step();
        if round % 2 == 0 {
            // Crash one aggregator per even round, then replace it.
            crash_lost += pipe.crash_aggregator(round % 2, 0);
            pipe.spawn_aggregator(round % 2, 0);
            pipe.step();
        }
        pipe.flush_hour(0);
    }
    pipe.step();
    pipe.flush_hour(0);
    pipe.seal_hour("client_events", 0);
    let moved = pipe.move_hour("client_events", 0).unwrap().records;
    let report = pipe.report();
    assert_eq!(report.lost_in_crashes, crash_lost);
    assert_eq!(
        moved + crash_lost,
        logged,
        "moved + crash-lost must equal logged"
    );
    // Loss is bounded by what was unflushed at crash time; with flushes
    // every round, that is at most two rounds of one DC's traffic.
    assert!(crash_lost <= 2 * 40, "loss {crash_lost} out of bounds");
}

#[test]
fn total_aggregator_loss_buffers_at_hosts_until_replacement() {
    let mut pipe = ScribePipeline::new(config());
    // Kill every aggregator in dc0 before anything is logged.
    pipe.crash_aggregator(0, 0);
    pipe.crash_aggregator(0, 1);
    let logged = log_batch(&mut pipe, 5, "a");
    pipe.step();
    let mid = pipe.report();
    assert!(
        mid.host_buffered > 0,
        "dc0 hosts must hold data while no aggregator lives"
    );
    // Replacement arrives; everything drains.
    pipe.spawn_aggregator(0, 0);
    pipe.step();
    pipe.flush_hour(0);
    pipe.seal_hour("client_events", 0);
    let moved = pipe.move_hour("client_events", 0).unwrap().records;
    assert_eq!(moved, logged);
    assert_eq!(pipe.report().host_buffered, 0);
}

#[test]
fn staging_outage_defers_but_never_duplicates() {
    let mut pipe = ScribePipeline::new(config());
    let logged = log_batch(&mut pipe, 8, "a");
    pipe.step();
    pipe.set_staging_available(0, false);
    pipe.flush_hour(0); // dc0 buffers to "local disk"
    pipe.flush_hour(0); // repeated flush attempts must not duplicate
    pipe.set_staging_available(0, true);
    pipe.flush_hour(0);
    pipe.flush_hour(0); // idempotent once drained
    pipe.seal_hour("client_events", 0);
    let moved = pipe.move_hour("client_events", 0).unwrap().records;
    assert_eq!(moved, logged, "no loss and no duplication through outage");
}

#[test]
fn mover_is_exactly_once_per_hour() {
    let mut pipe = ScribePipeline::new(config());
    log_batch(&mut pipe, 5, "a");
    pipe.step();
    pipe.flush_hour(0);
    pipe.seal_hour("client_events", 0);
    pipe.move_hour("client_events", 0).unwrap();
    // A second move of the same hour is rejected, not duplicated.
    assert!(pipe.move_hour("client_events", 0).is_err());
    let meta = pipe
        .main_warehouse()
        .dir_meta(&unified_logging::core::session::day_dir("client_events", 0))
        .unwrap();
    assert_eq!(meta.records, pipe.report().logged);
}

#[test]
fn warehouse_checksums_catch_corruption() {
    // Not a scribe test, but the recovery story depends on it: a corrupt
    // block surfaces as an error, never as silent garbage.
    use unified_logging::warehouse::WarehouseError;
    let wh = Warehouse::with_block_capacity(128);
    let path = WhPath::parse("/f").unwrap();
    let mut w = wh.create(&path).unwrap();
    for i in 0..100 {
        w.append_record(format!("record-{i}").as_bytes());
    }
    w.finish().unwrap();
    // Reading with a tampered checksum is simulated via the corrupt-stream
    // guards in the compressor; here we verify a clean read passes its
    // checksums end to end.
    let records = wh.open(&path).unwrap().read_all();
    assert!(records.is_ok());
    assert!(!matches!(
        records,
        Err(WarehouseError::ChecksumMismatch { .. })
    ));
}
