#!/usr/bin/env bash
# The full local gate: formatting, lints (warnings are errors), and tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== repro smoke (e14 parallel sweep, e15 pushdown sweep)"
cargo run --release -q -p uli-bench --bin repro -- --smoke e14 e15

echo "== chaos gate (seeded sweep + delivery-invariant checker)"
cargo test -q --test chaos
cargo run --release -q -p uli-bench --bin repro -- --smoke e16

echo "== obs gate (e17 smoke snapshot vs golden)"
cargo run --release -q -p uli-bench --bin repro -- --smoke e17
if ! diff -u crates/bench/golden/e17_smoke.golden.json target/e17_smoke.metrics.json; then
    echo "obs gate: smoke snapshot drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e17_smoke.metrics.json crates/bench/golden/e17_smoke.golden.json" >&2
    exit 1
fi
if grep -q '"duplicate_registrations": \["' target/e17_smoke.metrics.json; then
    echo "obs gate: a metric was registered twice." >&2
    exit 1
fi

echo "== ingest gate (e18 smoke metrics vs golden)"
cargo run --release -q -p uli-bench --bin repro -- --smoke e18
if ! diff -u crates/bench/golden/e18_smoke.golden.json target/e18_smoke.metrics.json; then
    echo "ingest gate: smoke metrics drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e18_smoke.metrics.json crates/bench/golden/e18_smoke.golden.json" >&2
    exit 1
fi

echo "== columnar gate (e19 smoke metrics vs golden)"
cargo run --release -q -p uli-bench --bin repro -- --smoke e19
if ! diff -u crates/bench/golden/e19_smoke.golden.json target/e19_smoke.metrics.json; then
    echo "columnar gate: smoke metrics drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e19_smoke.metrics.json crates/bench/golden/e19_smoke.golden.json" >&2
    exit 1
fi
if ! grep -q '"outputs_identical": true' target/e19_smoke.metrics.json; then
    echo "columnar gate: columnar arms diverged from the row reference." >&2
    exit 1
fi

echo "== bounded-memory gate (e20 smoke metrics vs golden)"
# Tiny budgets on a real (smoke-sized) day: every budgeted stage must
# spill, return byte-identical output, and keep its high-water mark under
# the budget. The repro binary exits nonzero if any invariant fails; the
# greps keep the gate honest against accidental gate removal.
cargo run --release -q -p uli-bench --bin repro -- --smoke e20
if ! diff -u crates/bench/golden/e20_smoke.golden.json target/e20_smoke.metrics.json; then
    echo "bounded-memory gate: smoke metrics drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e20_smoke.metrics.json crates/bench/golden/e20_smoke.golden.json" >&2
    exit 1
fi
if ! grep -q '"queries_identical": true' target/e20_smoke.metrics.json; then
    echo "bounded-memory gate: budgeted query rows diverged from unbounded." >&2
    exit 1
fi
if ! grep -q '"mat_matches_batch": true' target/e20_smoke.metrics.json; then
    echo "bounded-memory gate: streaming materialization diverged from batch." >&2
    exit 1
fi
if ! grep -q '"peaks_within_budget": true' target/e20_smoke.metrics.json; then
    echo "bounded-memory gate: a stage exceeded its memory budget." >&2
    exit 1
fi
if grep -q '"budgeted_spill_runs": 0,' target/e20_smoke.metrics.json; then
    echo "bounded-memory gate: no stage spilled — the tiny budgets are not binding." >&2
    exit 1
fi

echo "== lambda gate (e21 smoke metrics vs golden)"
# Streaming analytics vs batch over the pinned smoke day plus a seeded
# chaos sweep: views must be identical across worker counts, equal batch
# exactly for exact aggregates, stay within every sketch's declared error
# bound, and reconcile against the audited delivered partition. The repro
# binary exits nonzero if any invariant fails; the greps keep the gate
# honest against accidental gate removal.
cargo run --release -q -p uli-bench --bin repro -- --smoke e21
if ! diff -u crates/bench/golden/e21_smoke.golden.json target/e21_smoke.metrics.json; then
    echo "lambda gate: smoke metrics drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e21_smoke.metrics.json crates/bench/golden/e21_smoke.golden.json" >&2
    exit 1
fi
if ! grep -q '"streaming_matches_batch": true' target/e21_smoke.metrics.json; then
    echo "lambda gate: streaming did not converge to batch." >&2
    exit 1
fi
for bound in hll_within_bound topk_within_bound percentile_within_bound; do
    if ! grep -q "\"$bound\": true" target/e21_smoke.metrics.json; then
        echo "lambda gate: $bound violated — a sketch left its declared error bound." >&2
        exit 1
    fi
done
if ! grep -q '"chaos_reconciled": true' target/e21_smoke.metrics.json; then
    echo "lambda gate: chaos streaming totals diverged from the delivered partition." >&2
    exit 1
fi

echo "== serving gate (e22 smoke metrics vs golden)"
# Point lookups off the incrementally-maintained index vs the batch
# engine over the pinned smoke day: every answer must be byte-identical
# to batch at every worker count, the suite must decode at least 50x
# fewer bytes than the batch path, the serve/* registry must reconcile
# against the maintainer state, and chaos indexes (with crash-window
# injection between hour-land and index-commit) must account for exactly
# the delivered partition after recovery. The repro binary exits nonzero
# if any invariant fails; the greps keep the gate honest against
# accidental gate removal.
cargo run --release -q -p uli-bench --bin repro -- --smoke e22
if ! diff -u crates/bench/golden/e22_smoke.golden.json target/e22_smoke.metrics.json; then
    echo "serving gate: smoke metrics drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e22_smoke.metrics.json crates/bench/golden/e22_smoke.golden.json" >&2
    exit 1
fi
if ! grep -q '"answers_match": true' target/e22_smoke.metrics.json; then
    echo "serving gate: a serving answer diverged from the batch engine." >&2
    exit 1
fi
if ! grep -q '"index_lag_hours": 0,' target/e22_smoke.metrics.json; then
    echo "serving gate: the index lagged the delivered day." >&2
    exit 1
fi
if ! grep -q '"obs_reconciled": true' target/e22_smoke.metrics.json; then
    echo "serving gate: serve/* registry metrics diverged from maintainer state." >&2
    exit 1
fi
if ! grep -q '"chaos_consistent": true' target/e22_smoke.metrics.json; then
    echo "serving gate: chaos indexes diverged from the delivered partition." >&2
    exit 1
fi

echo "== delivery gate (e23 smoke metrics vs golden)"
# The parallel mover over the pinned smoke day: landed files, seen-set,
# and tap dispatch must be byte-identical to the serial mover at workers
# {1,4,8}, the seeded chaos sweep must stay invariant-clean and identical
# to serial with the 8-worker mover, and the machine-independent cost
# model must show >=3x at 8 workers. The repro binary exits nonzero if
# any invariant fails; the greps keep the gate honest against accidental
# gate removal.
cargo run --release -q -p uli-bench --bin repro -- --smoke e23
if ! diff -u crates/bench/golden/e23_smoke.golden.json target/e23_smoke.metrics.json; then
    echo "delivery gate: smoke metrics drifted from the golden file." >&2
    echo "If the change is intentional, refresh it with:" >&2
    echo "  cp target/e23_smoke.metrics.json crates/bench/golden/e23_smoke.golden.json" >&2
    exit 1
fi
if ! grep -q '"identical_across_workers": true' target/e23_smoke.metrics.json; then
    echo "delivery gate: parallel delivery diverged from serial." >&2
    exit 1
fi
if ! grep -q '"chaos_clean": true' target/e23_smoke.metrics.json; then
    echo "delivery gate: a chaos seed violated a delivery invariant." >&2
    exit 1
fi
if ! grep -q '"chaos_matches_serial": true' target/e23_smoke.metrics.json; then
    echo "delivery gate: parallel chaos outcome diverged from serial." >&2
    exit 1
fi

echo "ci: all green"
