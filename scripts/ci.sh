#!/usr/bin/env bash
# The full local gate: formatting, lints (warnings are errors), and tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== repro smoke (e14 parallel sweep, e15 pushdown sweep)"
cargo run --release -q -p uli-bench --bin repro -- --smoke e14 e15

echo "== chaos gate (seeded sweep + delivery-invariant checker)"
cargo test -q --test chaos
cargo run --release -q -p uli-bench --bin repro -- --smoke e16

echo "ci: all green"
