//! Unbounded MPMC channels with crossbeam-compatible disconnect semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the rejected message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message; fails if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe it.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender(..)")
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        match queue.pop_front() {
            Some(v) => Ok(v),
            None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                Err(TryRecvError::Disconnected)
            }
            None => Err(TryRecvError::Empty),
        }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator that ends when every sender is dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// True if no messages are currently queued.
    pub fn is_empty(&self) -> bool {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver(..)")
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn dropped_sender_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn mpmc_conserves_messages() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
