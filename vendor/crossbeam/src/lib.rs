//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the API subset the workspace uses: `crossbeam::channel`'s
//! unbounded MPMC channel with disconnect semantics (send fails once every
//! receiver is gone; recv fails once the queue is drained and every sender
//! is gone). Backed by a `Mutex<VecDeque>` + `Condvar`, which is plenty for
//! the simulated Scribe network and the scan pool's laptop-scale fan-out.

pub mod channel;
