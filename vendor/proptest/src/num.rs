//! Numeric strategies beyond plain ranges.

#[allow(non_snake_case)]
pub mod f64 {
    //! `f64` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over normal (finite, non-zero, non-subnormal) doubles.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    /// Normal doubles — no NaN, infinity, zero, or subnormals, so
    /// `PartialEq`-based round-trip assertions hold.
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_normal() {
                    return v;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_is_normal() {
            let mut rng = TestRng::deterministic("num::normal");
            for _ in 0..1000 {
                assert!(NORMAL.gen_value(&mut rng).is_normal());
            }
        }
    }
}
