//! `any::<T>()` — the canonical whole-domain strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
