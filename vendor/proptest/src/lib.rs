//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! reimplements the slice of proptest the workspace uses: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_recursive`/`boxed`, tuple and
//! range strategies, a small regex-subset string strategy, collection and
//! sample strategies, and `any::<T>()`.
//!
//! Differences from upstream, deliberate for a dependency-free build:
//!
//! * **No shrinking.** A failing case fails with the generated inputs
//!   printed in the panic message, but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so runs are reproducible without a regressions
//!   file (`*.proptest-regressions` files are ignored).
//! * The string strategy accepts the regex subset actually used in this
//!   repo: literal characters, `[...]` classes with ranges, `{m,n}`
//!   quantifiers, and the `\PC` (printable) class.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! `prop::` paths as re-exported by upstream's prelude.
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Runs one property-test case body, used by the `proptest!` expansion.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::gen_value(&strategy, &mut rng);
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run)
                ) {
                    eprintln!(
                        "proptest case {}/{} of {} failed (no shrinking in vendored proptest)",
                        case + 1, config.cases, stringify!($name)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
