//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.size_in(&self.size);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Maps with `size` entries; duplicate keys are retried a bounded number of
/// times, so the realized size can fall below the target for tiny key
/// domains (upstream rejects the case instead — same practical effect).
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { keys, values, size }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.size_in(&self.size);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 20 {
            out.insert(self.keys.gen_value(rng), self.values.gen_value(rng));
            attempts += 1;
        }
        out
    }
}

/// Sets with `size` elements (same duplicate caveat as [`btree_map`]).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.size_in(&self.size);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 20 {
            out.insert(self.element.gen_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::deterministic("collection::vec");
        let s = vec(0u8..255, 2..7);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn map_and_set_build() {
        let mut rng = TestRng::deterministic("collection::map");
        let m = btree_map("[a-z]{1,8}", 0u32..100, 0..4).gen_value(&mut rng);
        assert!(m.len() < 4);
        let s = btree_set("[a-z]{1,6}", 0..4).gen_value(&mut rng);
        assert!(s.len() < 4);
    }
}
