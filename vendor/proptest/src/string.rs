//! A regex-subset string generator.
//!
//! Supports exactly the constructs the workspace's patterns use:
//!
//! * literal characters (`x`, `:`, …)
//! * character classes `[...]` with ranges (`a-z`), literal members, and a
//!   leading/trailing literal `-`
//! * `{m,n}` and `{n}` quantifiers (applied to the preceding element)
//! * `\PC` — any printable (non-control) character

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Element {
    Literal(char),
    /// Flattened set of candidate characters.
    Class(Vec<char>),
    Printable,
}

#[derive(Debug, Clone)]
struct Quantified {
    element: Element,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let mut out: Vec<Quantified> = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let element = match chars[i] {
            '\\' => {
                // Only `\PC` (and `\pC`) appear in this repo's patterns;
                // any other escape is taken literally.
                if i + 2 < chars.len()
                    && (chars[i + 1] == 'P' || chars[i + 1] == 'p')
                    && chars[i + 2] == 'C'
                {
                    i += 3;
                    Element::Printable
                } else {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Element::Literal(c)
                }
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // Range `a-z` (a `-` that is not last and not first).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for v in c as u32..=hi as u32 {
                            if let Some(m) = char::from_u32(v) {
                                members.push(m);
                            }
                        }
                        i += 3;
                    } else {
                        members.push(c);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                assert!(!members.is_empty(), "empty character class in {pattern:?}");
                Element::Class(members)
            }
            c => {
                i += 1;
                Element::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push(Quantified { element, min, max });
    }
    out
}

/// Printable sampling pool: mostly ASCII, a sprinkling of wider chars so
/// multi-byte UTF-8 paths get exercised.
const WIDE_PRINTABLE: &[char] = &['é', 'ß', '中', 'λ', '→', '🙂', 'Ω', 'д'];

fn sample(element: &Element, rng: &mut TestRng) -> char {
    match element {
        Element::Literal(c) => *c,
        Element::Class(members) => members[rng.below(members.len())],
        Element::Printable => {
            if rng.below(10) == 0 {
                WIDE_PRINTABLE[rng.below(WIDE_PRINTABLE.len())]
            } else {
                // ASCII printable: 0x20..=0x7E.
                char::from_u32(0x20 + rng.below(0x5f) as u32).expect("ascii printable")
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for q in parse(pattern) {
        let count = q.min + rng.size_in(&(0..q.max - q.min + 1));
        for _ in 0..count {
            out.push(sample(&q.element, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string::tests")
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}", &mut r);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn trailing_literal_after_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{0,5}x", &mut r);
            assert!(s.ends_with('x'), "{s:?}");
            assert!(s.chars().count() <= 6);
        }
    }

    #[test]
    fn punctuation_class() {
        let mut r = rng();
        let allowed = "abcdefghijklmnopqrstuvwxyz0123456789 =;(),'<>*+$./_-";
        for _ in 0..100 {
            let s = generate("[a-z0-9 =;(),'<>*+$./_-]{0,200}", &mut r);
            assert!(s.chars().all(|c| allowed.contains(c)), "{s:?}");
        }
    }

    #[test]
    fn printable_class_has_no_controls() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC{0,200}", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut r = rng();
        let s = generate("[ab]{4}", &mut r);
        assert_eq!(s.chars().count(), 4);
    }

    #[test]
    fn mixed_alnum_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-zA-Z0-9 _:-]{0,24}", &mut r);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || " _:-".contains(c)),
                "{s:?}"
            );
        }
    }
}
