//! Test configuration and the deterministic RNG behind case generation.

use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generation RNG: a seeded [`rand::StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// An RNG whose stream is a pure function of `label` (the test's module
    /// path + name), so every run explores the same cases.
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label gives a stable per-test seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(rand::StdRng::seed_from_u64(h))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw below 0");
        use rand::Rng;
        self.0.gen_range(0..n)
    }

    /// Uniform size draw from a half-open range.
    pub fn size_in(&mut self, range: &std::ops::Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        range.start + self.below(range.end - range.start)
    }
}
