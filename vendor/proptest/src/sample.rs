//! Sampling strategies: `select` and `Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list of values.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty list");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

/// An index into a collection whose length is only known at use time;
/// generated via `any::<Index>()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Index {
        Index(raw)
    }

    /// Resolves against a concrete length. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }

    /// Picks the element of `slice` this index resolves to.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}
