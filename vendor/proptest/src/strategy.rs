//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: at each of `depth` levels, generation picks
    /// between the base strategy and `branch(smaller)`. The `_desired_size`
    /// and `_expected_branch_size` hints are accepted for signature
    /// compatibility but unused (no shrinking, no size accounting).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            strat = Union::new(vec![leaf, branch(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Object-safe view of [`Strategy`], what [`BoxedStrategy`] stores.
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between same-typed strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies: a `&str` literal is a regex-subset pattern.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests")
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut r);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_all_arms() {
        let mut r = rng();
        let s = Union::new(vec![(0u32..1).boxed(), (10u32..11).boxed()]);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..100 {
            match s.gen_value(&mut r) {
                0 => lo = true,
                10 => hi = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn weight(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(v) => u64::from(*v),
                Tree::Node(children) => children.iter().map(weight).sum(),
            }
        }
        let leaf = (0u8..255).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 32, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            let _ = weight(&strat.gen_value(&mut r));
        }
    }
}
