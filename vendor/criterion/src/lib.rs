//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface the `uli-bench` benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched`, throughput annotation — with plain wall-clock
//! timing: per benchmark it runs a warm-up pass plus `sample_size` timed
//! samples and prints min/mean/max. No statistics engine, no HTML reports,
//! no `target/criterion` baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for compatibility; batches are
/// always one input here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Work-per-iteration annotation, echoed as a rate in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let sample_size = self.sample_size;
        run_one(None, &id.into(), sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (report lines were already printed per benchmark).
    pub fn finish(&mut self) {}
}

fn run_one(
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_sec(n)),
                Throughput::Bytes(n) => {
                    format!("  {:>12.2} MiB/s", per_sec(n) / (1024.0 * 1024.0))
                }
            }
        })
        .unwrap_or_default();
    println!(
        "bench {label:<48} min {:>10}  mean {:>10}  max {:>10}{rate}",
        Pretty(min),
        Pretty(mean),
        Pretty(max)
    );
}

struct Pretty(Duration);

impl fmt::Display for Pretty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns < 10_000 {
            write!(f, "{ns} ns")
        } else if ns < 10_000_000 {
            write!(f, "{:.1} µs", ns as f64 / 1e3)
        } else if ns < 10_000_000_000 {
            write!(f, "{:.1} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.2} s", ns as f64 / 1e9)
        }
    }
}

/// Passed to each benchmark closure; collects timed samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample after one warm-up call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
