//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The workload generator only needs seeded, deterministic, decently mixed
//! randomness: `StdRng::seed_from_u64`, `Rng::gen::<T>()`, and
//! `Rng::gen_range(range)`. This vendored crate provides exactly that on a
//! xoshiro256** core seeded via SplitMix64. Streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, which is fine: the repo's tests assert
//! determinism (same seed → same stream) and statistics, never upstream's
//! exact byte streams.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::gen_range`] endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Converts to the widest unsigned type for span arithmetic.
    fn to_u128(self) -> u128;
    /// Inverse of [`SampleUniform::to_u128`] (offset math keeps it in range).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                // Shift signed domains up so subtraction never wraps.
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u128
            }
            fn from_u128(v: u128) -> Self {
                ((v as i128).wrapping_add(<$t>::MIN as i128)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Widening-multiply rejection sampling (Lemire); the retry loop makes
    // the draw exactly uniform rather than merely negligibly biased.
    if span.is_power_of_two() {
        return u128::from(rng.next_u64()) & (span - 1);
    }
    let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
    loop {
        let v = u128::from(rng.next_u64());
        if v <= zone {
            return v % span;
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u128(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "cannot sample empty range");
        T::from_u128(lo + uniform_below(rng, hi - lo + 1))
    }
}

/// The user-facing sampling interface (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Reproducible construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the canonical seeder for xoshiro-family generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The default deterministic generator: xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate case; splitmix64 cannot
        // produce four zeros from any seed, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(40..2500);
            assert!((40..2500).contains(&v));
            let u: usize = rng.gen_range(0..20);
            assert!(u < 20);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }
}
