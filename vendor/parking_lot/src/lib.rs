//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! tiny API subset it actually uses: [`Mutex`] and [`RwLock`] with
//! poison-free guards. Backed by `std::sync`; a poisoned std lock is
//! recovered rather than propagated, matching parking_lot's behavior of not
//! having poisoning at all.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive, API-compatible (for this workspace's usage)
/// with `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock, API-compatible (for this workspace's usage) with
/// `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
